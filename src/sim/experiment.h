// Declarative experiment suite over the fused pair-analysis pipeline.
//
// A Table-3- or Figure-16-style study is a cross product: scenario x
// rollout step x security model x LP policy x analysis set, evaluated over
// sampled (attacker, destination) pairs. An ExperimentSpec names one cell
// of that product; run_experiment_suite sweeps a list of specs on the
// BatchExecutor and returns labeled PairStats rows, computing every routing
// outcome once per pair regardless of how many analyses a spec selects.
// Scenarios are referenced by registry name (deployment/scenario.h), so a
// whole suite is data the caller can build programmatically or hard-code.
#ifndef SBGP_SIM_EXPERIMENT_H
#define SBGP_SIM_EXPERIMENT_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "deployment/scenario.h"
#include "routing/model.h"
#include "sim/pair_analysis.h"
#include "sim/traffic.h"
#include "topology/as_graph.h"
#include "topology/tier.h"

namespace sbgp::sim {

/// Selects the last step of a scenario's rollout.
inline constexpr std::size_t kLastRolloutStep = static_cast<std::size_t>(-1);

/// One experiment: a deployment (scenario + rollout step), a policy model,
/// an analysis selection, and the pair sample to evaluate on.
struct ExperimentSpec {
  /// Row label; composed from the fields below when empty.
  std::string label;

  // --- deployment -------------------------------------------------------
  std::string scenario = "t1-t2";  // deployment::scenario_registry() name
  std::size_t rollout_step = kLastRolloutStep;
  deployment::StubMode stub_mode = deployment::StubMode::kFullSbgp;

  // --- policy / analyses ------------------------------------------------
  SecurityModel model = SecurityModel::kSecurityThird;
  LocalPrefPolicy lp = LocalPrefPolicy::standard();
  AnalysisSet analyses;
  bool hysteresis = false;  // Section 8 sticky-route variant

  // --- pair sample ------------------------------------------------------
  // Explicit sets win when non-empty; otherwise `num_attackers` non-stub
  // ASes and `num_destinations` arbitrary ASes are sampled with
  // `sample_seed` (and sample_seed + 1), mirroring the benches.
  std::vector<AsId> attackers;
  std::vector<AsId> destinations;
  std::size_t num_attackers = 40;
  std::size_t num_destinations = 40;
  std::uint64_t sample_seed = 4242;

  // --- traffic ----------------------------------------------------------
  /// Per-pair weight model feeding the w_* mirrors of PairStats. The
  /// default (uniform, scale 1) reproduces the classic unweighted sweep
  /// bit for bit.
  TrafficModel traffic;
};

/// Stable 64-bit fingerprint of an experiment spec (util::Fingerprint over
/// every field, in declaration order — including the label, which is
/// emitted into result rows). Identical across processes and platforms;
/// any single-field change yields a different value. The spec half of a
/// campaign-cache key (sim/campaign_cache.h).
[[nodiscard]] std::uint64_t spec_fingerprint(const ExperimentSpec& spec);

/// One result row of a suite run.
struct ExperimentRow {
  std::string label;       // spec label (or the composed default)
  std::string step_label;  // rollout step label, e.g. "T1+37xT2+stubs"
  SecurityModel model = SecurityModel::kInsecure;
  bool hysteresis = false;
  std::size_t num_non_stub_secure = 0;  // the x-axis of Figures 7/8/11
  std::size_t total_secure = 0;         // |S| including stubs and simplex
  std::size_t num_attackers = 0;
  std::size_t num_destinations = 0;
  PairStats stats;

  [[nodiscard]] bool operator==(const ExperimentRow&) const = default;
};

/// One spec resolved against a topology: the deployment to attack, the
/// sampled pair sets, the fused-pipeline config, and the result-row header
/// (stats still zero). `deployment` points into the owning resolver's
/// rollout cache and is valid for the resolver's lifetime.
struct ResolvedExperiment {
  PairAnalysisConfig cfg;
  const Deployment* deployment = nullptr;
  std::vector<AsId> attackers;
  std::vector<AsId> destinations;
  TrafficModel traffic;
  ExperimentRow header;
};

/// Resolves ExperimentSpecs against one topology, building each scenario's
/// rollout once per (scenario, stub mode) and reusing it across specs —
/// the per-topology stage shared by run_experiment_suite and the
/// multi-topology campaign driver (sim/campaign.h).
class ExperimentResolver {
 public:
  /// `sample_salt` perturbs the pair-sampling seeds: 0 (the default, used
  /// by every generated topology) samples with spec.sample_seed exactly as
  /// before; a non-zero salt — file-backed topologies pass their per-trial
  /// seed — mixes it into the effective seed so campaigns on a fixed graph
  /// still draw fresh pairs every trial.
  explicit ExperimentResolver(const AsGraph& g,
                              const topology::TierInfo& tiers,
                              std::uint64_t sample_salt = 0)
      : g_(g), tiers_(tiers), sample_salt_(sample_salt) {}

  ExperimentResolver(const ExperimentResolver&) = delete;
  ExperimentResolver& operator=(const ExperimentResolver&) = delete;

  /// Resolves one spec: builds or reuses the rollout, samples the pair
  /// sets, and fills the row header. Throws std::invalid_argument (naming
  /// the registered scenarios) on unknown scenario names, and on
  /// out-of-range rollout steps, empty analysis sets, or pair samples
  /// with no valid (attacker != destination) pair.
  [[nodiscard]] ResolvedExperiment resolve(const ExperimentSpec& spec);

 private:
  const AsGraph& g_;
  const topology::TierInfo& tiers_;
  std::uint64_t sample_salt_ = 0;
  std::map<std::pair<std::string, deployment::StubMode>,
           std::vector<deployment::RolloutStep>>
      rollouts_;
};

/// Runs every spec over the fused pipeline. Rollouts are built once per
/// (scenario, stub mode) and reused across specs; rows come back in spec
/// order and are bit-for-bit independent of the thread count. Throws
/// std::invalid_argument on unknown scenario names, out-of-range rollout
/// steps, or empty analysis sets.
[[nodiscard]] std::vector<ExperimentRow> run_experiment_suite(
    const AsGraph& g, const topology::TierInfo& tiers,
    const std::vector<ExperimentSpec>& specs, const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_EXPERIMENT_H
