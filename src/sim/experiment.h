// Declarative experiment suite over the fused pair-analysis pipeline.
//
// A Table-3- or Figure-16-style study is a cross product: scenario x
// rollout step x security model x LP policy x analysis set, evaluated over
// sampled (attacker, destination) pairs. An ExperimentSpec names one cell
// of that product; run_experiment_suite sweeps a list of specs on the
// BatchExecutor and returns labeled PairStats rows, computing every routing
// outcome once per pair regardless of how many analyses a spec selects.
// Scenarios are referenced by registry name (deployment/scenario.h), so a
// whole suite is data the caller can build programmatically or hard-code.
#ifndef SBGP_SIM_EXPERIMENT_H
#define SBGP_SIM_EXPERIMENT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "deployment/scenario.h"
#include "routing/model.h"
#include "sim/pair_analysis.h"
#include "topology/as_graph.h"
#include "topology/tier.h"

namespace sbgp::sim {

/// Selects the last step of a scenario's rollout.
inline constexpr std::size_t kLastRolloutStep = static_cast<std::size_t>(-1);

/// One experiment: a deployment (scenario + rollout step), a policy model,
/// an analysis selection, and the pair sample to evaluate on.
struct ExperimentSpec {
  /// Row label; composed from the fields below when empty.
  std::string label;

  // --- deployment -------------------------------------------------------
  std::string scenario = "t1-t2";  // deployment::scenario_registry() name
  std::size_t rollout_step = kLastRolloutStep;
  deployment::StubMode stub_mode = deployment::StubMode::kFullSbgp;

  // --- policy / analyses ------------------------------------------------
  SecurityModel model = SecurityModel::kSecurityThird;
  LocalPrefPolicy lp = LocalPrefPolicy::standard();
  AnalysisSet analyses;
  bool hysteresis = false;  // Section 8 sticky-route variant

  // --- pair sample ------------------------------------------------------
  // Explicit sets win when non-empty; otherwise `num_attackers` non-stub
  // ASes and `num_destinations` arbitrary ASes are sampled with
  // `sample_seed` (and sample_seed + 1), mirroring the benches.
  std::vector<AsId> attackers;
  std::vector<AsId> destinations;
  std::size_t num_attackers = 40;
  std::size_t num_destinations = 40;
  std::uint64_t sample_seed = 4242;
};

/// One result row of a suite run.
struct ExperimentRow {
  std::string label;       // spec label (or the composed default)
  std::string step_label;  // rollout step label, e.g. "T1+37xT2+stubs"
  SecurityModel model = SecurityModel::kInsecure;
  bool hysteresis = false;
  std::size_t num_non_stub_secure = 0;  // the x-axis of Figures 7/8/11
  std::size_t total_secure = 0;         // |S| including stubs and simplex
  std::size_t num_attackers = 0;
  std::size_t num_destinations = 0;
  PairStats stats;
};

/// Runs every spec over the fused pipeline. Rollouts are built once per
/// (scenario, stub mode) and reused across specs; rows come back in spec
/// order and are bit-for-bit independent of the thread count. Throws
/// std::invalid_argument on unknown scenario names, out-of-range rollout
/// steps, or empty analysis sets.
[[nodiscard]] std::vector<ExperimentRow> run_experiment_suite(
    const AsGraph& g, const topology::TierInfo& tiers,
    const std::vector<ExperimentSpec>& specs, const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_EXPERIMENT_H
