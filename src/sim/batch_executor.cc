#include "sim/batch_executor.h"

#include <iterator>
#include <utility>

namespace sbgp::sim {

namespace {

/// Chunk size balancing scheduling overhead against tail imbalance: about
/// eight chunks per participating worker, at least one index each.
[[nodiscard]] std::size_t chunk_for(std::size_t count, std::size_t workers) {
  return std::max<std::size_t>(1, count / (workers * 8));
}

/// Renders the in-flight exception for a UnitFailure record.
[[nodiscard]] std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

BatchExecutor::BatchExecutor(std::size_t threads)
    : num_workers_(threads == 0 ? default_threads() : threads),
      workspaces_(num_workers_) {}

BatchExecutor::~BatchExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

BatchExecutor& BatchExecutor::shared() {
  static BatchExecutor executor;
  return executor;
}

void BatchExecutor::ensure_started() {
  if (started_) return;
  // The caller participates as worker 0, so the pool holds one thread per
  // remaining worker id.
  threads_.reserve(num_workers_ - 1);
  for (std::size_t t = 1; t < num_workers_; ++t) {
    threads_.emplace_back([this, t] { worker_main(t); });
  }
  started_ = true;
}

void BatchExecutor::drain(Job& job, std::size_t worker) {
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.count) return;
    const std::size_t end = std::min(begin + job.chunk, job.count);
    for (std::size_t i = begin; i < end; ++i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      try {
        (*job.task)(worker, i);
      } catch (...) {
        if (job.failures != nullptr) {
          // Isolation mode: record and keep draining — a failed unit
          // costs its own result, never the batch.
          (*job.failures)[worker].push_back({i, worker,
                                             describe_current_exception(),
                                             std::current_exception()});
          continue;
        }
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (!error_) error_ = std::current_exception();
        }
        stop_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
}

void BatchExecutor::worker_main(std::size_t id) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job;
    std::size_t limit;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_seq_ != seen; });
      if (shutdown_) return;
      seen = job_seq_;
      // The job lives on the caller's stack: job_ is nulled (under this
      // mutex) before the caller destroys it, so both reads must happen
      // while the lock is held. job_ == nullptr means the batch already
      // finished without us — a non-participant woke late.
      job = job_;
      limit = job != nullptr ? job->limit : 0;
    }
    // Workers beyond the job's limit sit this batch out entirely: they are
    // not counted in active_ and go straight back to sleep. Participants
    // (id < limit) may safely use `job` outside the lock — the caller
    // blocks until every participant has decremented active_.
    if (id >= limit) continue;
    drain(*job, id);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void BatchExecutor::run_job(Job& job, std::size_t workers) {
  ensure_started();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    job_ = &job;
    active_ = workers - 1;  // pool participants; the caller is worker 0
    ++job_seq_;
  }
  work_cv_.notify_all();
  drain(job, /*worker=*/0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }
}

void BatchExecutor::run(std::size_t count, const Task& task,
                        std::size_t max_workers) {
  if (count == 0) return;
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  const std::size_t workers = std::min(effective_workers(max_workers), count);

  if (workers == 1) {
    // Inline fast path: no pool involvement, natural exception propagation,
    // and the caller thread reuses workspace(0).
    for (std::size_t i = 0; i < count; ++i) task(0, i);
    return;
  }

  Job job;
  job.count = count;
  job.chunk = chunk_for(count, workers);
  job.limit = workers;
  job.task = &task;
  run_job(job, workers);
  if (error_) std::rethrow_exception(error_);
}

std::vector<UnitFailure> BatchExecutor::run_isolated(std::size_t count,
                                                     const Task& task,
                                                     std::size_t max_workers) {
  if (count == 0) return {};
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  const std::size_t workers = std::min(effective_workers(max_workers), count);
  std::vector<std::vector<UnitFailure>> failures(workers);

  if (workers == 1) {
    // Inline fast path, mirroring run(): every index executes, throws are
    // captured in index order.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        task(0, i);
      } catch (...) {
        failures[0].push_back(
            {i, 0, describe_current_exception(), std::current_exception()});
      }
    }
    return std::move(failures[0]);
  }

  Job job;
  job.count = count;
  job.chunk = chunk_for(count, workers);
  job.limit = workers;
  job.task = &task;
  job.failures = &failures;
  run_job(job, workers);

  // Merge the per-worker sinks into one index-sorted list so callers see
  // a deterministic order regardless of which worker drained which chunk.
  std::vector<UnitFailure> merged;
  for (auto& sink : failures) {
    merged.insert(merged.end(), std::make_move_iterator(sink.begin()),
                  std::make_move_iterator(sink.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const UnitFailure& a, const UnitFailure& b) {
              return a.index < b.index;
            });
  return merged;
}

}  // namespace sbgp::sim
