// Campaign result serialization: CSV and JSON, with round-trip readers.
//
// Per-trial rows carry the raw integer counters of every analysis (exact
// decimal serialization), so written results can be diffed byte-for-byte
// across machines and thread counts, re-aggregated offline, or compared in
// CI against a checked-in baseline. Aggregated rows carry the derived
// metric summaries (mean/stderr/min/max) formatted with max_digits10, so
// parsing returns the identical doubles. Both formats are flat and
// self-describing: CSV starts with a header line the readers verify;
// JSON is an array of objects keyed by the same column names.
#ifndef SBGP_SIM_CAMPAIGN_IO_H
#define SBGP_SIM_CAMPAIGN_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace sbgp::sim {

// --- per-trial rows --------------------------------------------------------

// The per-trial schema has two generations. The legacy one carries the 8
// identity columns plus the 31 unweighted counters; the weighted one
// appends `weight` (sum of pair weights — the weighted `pairs`) and a
// `w_`-prefixed mirror of every analysis counter. Writers emit the legacy
// layout whenever every row is uniform-weight (so existing baselines and
// cache entries stay byte-identical) and the weighted layout otherwise;
// readers accept both, reconstructing the mirrors (weight = pairs,
// w_X = X) from legacy files — which is exactly what those files mean.

/// Column names of the FULL per-trial row schema (weighted generation) in
/// serialization order — the CSV header fields / JSON object keys. Shared
/// by the writers, the header-checking readers, and the baseline differ
/// (campaign_diff.h). The legacy generation is a strict prefix.
[[nodiscard]] const std::vector<std::string>& trial_row_columns();

/// One row's values as strings aligned with trial_row_columns(): exactly
/// the fields write_trial_rows_csv emits in weighted form (integer
/// counters in exact decimal), so two rows are byte-identical in
/// serialized form iff their value vectors are equal.
[[nodiscard]] std::vector<std::string> trial_row_values(
    const CampaignTrialRow& row);

/// True iff the row's weighted mirrors say exactly what a weight-1 model
/// produces: weight == pairs and every w_ counter equals its unweighted
/// counterpart. Such rows serialize in the legacy layout.
[[nodiscard]] bool is_uniform_weight(const CampaignTrialRow& row);

/// Auto-detecting writer: legacy layout iff every row is_uniform_weight.
void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows);
/// Explicit-generation writer (matches TrialRowCsvAppender(os, weighted)),
/// for callers that must fix the layout before seeing the rows — e.g. a
/// streaming sink whose file must stay byte-identical to the end-of-run
/// writer's. Throws std::logic_error if a non-uniform row meets
/// weighted == false.
void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows,
                          bool weighted);
/// Parses either generation write_trial_rows_csv produces. Throws
/// std::invalid_argument on a header mismatch or malformed row.
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_csv(
    std::istream& is);

void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows);
void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows,
                           bool weighted);
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_json(
    std::istream& is);

/// Streaming per-trial CSV sink: the header is written at construction,
/// one row per append(). Wiring `append` as a sim::RowSink streams rows to
/// disk as cells complete, and the resulting file is byte-identical to
/// write_trial_rows_csv over the same row sequence (that writer is built
/// on this class). The stream must outlive the appender.
class TrialRowCsvAppender {
 public:
  /// `weighted` picks the schema generation up front (the header precedes
  /// every row): false = legacy columns, true = the full weighted layout.
  /// Appending a non-uniform-weight row to a legacy appender throws
  /// std::logic_error — silently dropping the mirrors would lose data.
  explicit TrialRowCsvAppender(std::ostream& os, bool weighted = false);
  void append(const CampaignTrialRow& row);

 private:
  std::ostream* os_;
  bool weighted_;
};

/// Streaming per-trial JSON sink: "[" at construction, one array element
/// per append(), "]" on finish() — which must be called exactly once after
/// the last row (the destructor does NOT close the array, so a crashed
/// producer leaves an obviously-truncated file rather than a silently
/// short one). Byte-identical to write_trial_rows_json over the same rows.
class TrialRowJsonAppender {
 public:
  /// `weighted` as in TrialRowCsvAppender: element keys are fixed per
  /// file, and a non-uniform row in legacy mode throws std::logic_error.
  explicit TrialRowJsonAppender(std::ostream& os, bool weighted = false);
  void append(const CampaignTrialRow& row);
  void finish();

 private:
  std::ostream* os_;
  bool weighted_ = false;
  std::string pending_;  // previous element, held back until we know
                         // whether a comma or the closing bracket follows
  bool any_ = false;
  bool finished_ = false;
};

// --- aggregated rows -------------------------------------------------------

// The aggregated schema has grown three times: `failed_trials` (always 0
// for a clean run), `stopping_reason` ("fixed" / "converged" / "budget" —
// the adaptive-stopping outcome, sim::StoppingReason), and the
// traffic-weighted metric summaries (`w_<metric>_<part>` columns / the
// "weighted_metrics" JSON object). The writers always emit the newest
// generation; the readers accept all four. Absent columns default to
// 0 / kFixed / weighted_metrics = metrics, which is exactly what files
// written before each column existed mean (older files were all
// uniform-weight, where the weighted metrics equal the unweighted ones).

void write_campaign_rows_csv(std::ostream& os,
                             const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_csv(
    std::istream& is);

void write_campaign_rows_json(std::ostream& os,
                              const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_json(
    std::istream& is);

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_IO_H
