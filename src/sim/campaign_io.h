// Campaign result serialization: CSV and JSON, with round-trip readers.
//
// Per-trial rows carry the raw integer counters of every analysis (exact
// decimal serialization), so written results can be diffed byte-for-byte
// across machines and thread counts, re-aggregated offline, or compared in
// CI against a checked-in baseline. Aggregated rows carry the derived
// metric summaries (mean/stderr/min/max) formatted with max_digits10, so
// parsing returns the identical doubles. Both formats are flat and
// self-describing: CSV starts with a header line the readers verify;
// JSON is an array of objects keyed by the same column names.
#ifndef SBGP_SIM_CAMPAIGN_IO_H
#define SBGP_SIM_CAMPAIGN_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace sbgp::sim {

// --- per-trial rows --------------------------------------------------------

/// Column names of the per-trial row schema in serialization order — the
/// CSV header fields / JSON object keys. Shared by the writers, the
/// header-checking readers, and the baseline differ (campaign_diff.h).
[[nodiscard]] const std::vector<std::string>& trial_row_columns();

/// One row's values as strings aligned with trial_row_columns(): exactly
/// the fields write_trial_rows_csv emits (integer counters in exact
/// decimal), so two rows are byte-identical in serialized form iff their
/// value vectors are equal.
[[nodiscard]] std::vector<std::string> trial_row_values(
    const CampaignTrialRow& row);

void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows);
/// Parses what write_trial_rows_csv produced. Throws std::invalid_argument
/// on a header mismatch or malformed row.
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_csv(
    std::istream& is);

void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows);
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_json(
    std::istream& is);

// --- aggregated rows -------------------------------------------------------

void write_campaign_rows_csv(std::ostream& os,
                             const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_csv(
    std::istream& is);

void write_campaign_rows_json(std::ostream& os,
                              const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_json(
    std::istream& is);

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_IO_H
