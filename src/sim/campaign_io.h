// Campaign result serialization: CSV and JSON, with round-trip readers.
//
// Per-trial rows carry the raw integer counters of every analysis (exact
// decimal serialization), so written results can be diffed byte-for-byte
// across machines and thread counts, re-aggregated offline, or compared in
// CI against a checked-in baseline. Aggregated rows carry the derived
// metric summaries (mean/stderr/min/max) formatted with max_digits10, so
// parsing returns the identical doubles. Both formats are flat and
// self-describing: CSV starts with a header line the readers verify;
// JSON is an array of objects keyed by the same column names.
#ifndef SBGP_SIM_CAMPAIGN_IO_H
#define SBGP_SIM_CAMPAIGN_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace sbgp::sim {

// --- per-trial rows --------------------------------------------------------

/// Column names of the per-trial row schema in serialization order — the
/// CSV header fields / JSON object keys. Shared by the writers, the
/// header-checking readers, and the baseline differ (campaign_diff.h).
[[nodiscard]] const std::vector<std::string>& trial_row_columns();

/// One row's values as strings aligned with trial_row_columns(): exactly
/// the fields write_trial_rows_csv emits (integer counters in exact
/// decimal), so two rows are byte-identical in serialized form iff their
/// value vectors are equal.
[[nodiscard]] std::vector<std::string> trial_row_values(
    const CampaignTrialRow& row);

void write_trial_rows_csv(std::ostream& os,
                          const std::vector<CampaignTrialRow>& rows);
/// Parses what write_trial_rows_csv produced. Throws std::invalid_argument
/// on a header mismatch or malformed row.
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_csv(
    std::istream& is);

void write_trial_rows_json(std::ostream& os,
                           const std::vector<CampaignTrialRow>& rows);
[[nodiscard]] std::vector<CampaignTrialRow> read_trial_rows_json(
    std::istream& is);

/// Streaming per-trial CSV sink: the header is written at construction,
/// one row per append(). Wiring `append` as a sim::RowSink streams rows to
/// disk as cells complete, and the resulting file is byte-identical to
/// write_trial_rows_csv over the same row sequence (that writer is built
/// on this class). The stream must outlive the appender.
class TrialRowCsvAppender {
 public:
  explicit TrialRowCsvAppender(std::ostream& os);
  void append(const CampaignTrialRow& row);

 private:
  std::ostream* os_;
};

/// Streaming per-trial JSON sink: "[" at construction, one array element
/// per append(), "]" on finish() — which must be called exactly once after
/// the last row (the destructor does NOT close the array, so a crashed
/// producer leaves an obviously-truncated file rather than a silently
/// short one). Byte-identical to write_trial_rows_json over the same rows.
class TrialRowJsonAppender {
 public:
  explicit TrialRowJsonAppender(std::ostream& os);
  void append(const CampaignTrialRow& row);
  void finish();

 private:
  std::ostream* os_;
  std::string pending_;  // previous element, held back until we know
                         // whether a comma or the closing bracket follows
  bool any_ = false;
  bool finished_ = false;
};

// --- aggregated rows -------------------------------------------------------

// The aggregated schema has grown twice: `failed_trials` (always 0 for a
// clean run) and `stopping_reason` ("fixed" / "converged" / "budget" —
// the adaptive-stopping outcome, sim::StoppingReason). The readers accept
// all three header generations; absent columns default to 0 / kFixed,
// which is exactly what files written before the columns existed mean.

void write_campaign_rows_csv(std::ostream& os,
                             const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_csv(
    std::istream& is);

void write_campaign_rows_json(std::ostream& os,
                              const std::vector<CampaignRow>& rows);
[[nodiscard]] std::vector<CampaignRow> read_campaign_rows_json(
    std::istream& is);

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_IO_H
