// Multi-topology experiment campaigns.
//
// The paper's headline numbers (Table 3, Figures 3-16) are statistics over
// one sampled AS graph; a production-scale reproduction sweeps many
// generated topologies and reports per-trial spread. A CampaignSpec is
// pure data: a topology::topology_registry() name, a trial count, a master
// seed, and the ExperimentSpec list to evaluate on every trial's topology.
//
// Scheduling: run_campaign flattens the whole campaign — every trial's
// topology prep plus every (trial, spec, pair) work item — into a single
// BatchExecutor submission. Short specs no longer serialize behind long
// ones at per-spec run() barriers, and topology generation for later
// trials overlaps pair analysis of earlier ones: prep units occupy the
// lowest indices, so workers draining pair chunks of trial t while another
// worker is still generating trial t+1 is the steady state, not a special
// case.
//
// Determinism contract: trial t's topology is generated from
// topology::trial_seed(seed, topology, t) — reproducible in isolation —
// and all accumulation is per-worker integer partials merged in worker
// order, so per-trial rows are bit-for-bit identical to independent
// run_experiment_suite calls on the same generated topologies, for any
// worker count.
#ifndef SBGP_SIM_CAMPAIGN_H
#define SBGP_SIM_CAMPAIGN_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.h"
#include "util/stats.h"

namespace sbgp::sim {

/// A whole multi-topology study as data: every trial generates a fresh
/// topology from the named registry entry and evaluates every experiment
/// spec on it. Experiment specs must sample their pair sets (explicit
/// attacker/destination AS lists are topology-specific and rejected).
struct CampaignSpec {
  std::string label;                     // defaults to the topology name
  std::string topology = "default-10k";  // topology::topology_registry() name
  std::size_t trials = 3;
  std::uint64_t seed = 20130812;  // master seed -> per-trial topology seeds
  std::vector<ExperimentSpec> experiments;
  /// When non-empty, a CampaignCache directory (sim/campaign_cache.h):
  /// run_campaign consults it per (trial, spec) cell before enqueuing the
  /// cell's pair grid — hits skip engine work entirely (a trial whose
  /// every cell hits is not even generated) — and persists every computed
  /// row after the run. Rows served from cache are byte-identical to
  /// recomputed ones (the store round-trips raw integer counters).
  std::string cache_dir;
};

/// One (trial, experiment spec) result: the same row run_experiment_suite
/// would produce on that trial's topology, plus the campaign coordinates
/// that make the row self-describing in serialized form.
struct CampaignTrialRow {
  std::string topology;
  std::size_t trial = 0;
  std::uint64_t topology_seed = 0;  // topology::trial_seed(...) of this trial
  std::size_t spec_index = 0;       // index into CampaignSpec::experiments
  ExperimentRow row;

  [[nodiscard]] bool operator==(const CampaignTrialRow&) const = default;
};

/// Cross-trial summary of one derived metric.
struct MetricSummary {
  double mean = 0.0;
  double std_error = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] bool operator==(const MetricSummary&) const = default;
};

/// The derived per-row metrics a campaign aggregates across trials, in
/// campaign_metric_names() order. Metrics of unselected analyses are zero.
inline constexpr std::size_t kNumCampaignMetrics = 9;

/// Column names: happy_lower, happy_upper, doomed, protectable, immune,
/// downgraded, collateral_benefits, collateral_damages, metric_change.
[[nodiscard]] const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names();

/// Derived metric values of one row's statistics (fractions of the
/// relevant source populations; 0 when the analysis was not selected).
[[nodiscard]] std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats);

/// Index of a named metric in campaign_metric_names() order; throws
/// std::invalid_argument (listing the names) for unknown names.
[[nodiscard]] std::size_t campaign_metric_index(std::string_view name);

/// One experiment spec aggregated across every trial of a campaign.
struct CampaignRow {
  std::string label;  // trial 0's row label (step labels can vary per trial)
  std::string topology;
  std::size_t spec_index = 0;
  std::size_t trials = 0;
  std::array<MetricSummary, kNumCampaignMetrics> metrics;

  [[nodiscard]] bool operator==(const CampaignRow&) const = default;
};

/// Everything a campaign produced: per-trial rows in (trial-major, spec
/// order) and one aggregated row per experiment spec.
struct CampaignResult {
  std::string label;
  std::string topology;
  std::uint64_t seed = 0;
  std::vector<CampaignTrialRow> trial_rows;
  std::vector<CampaignRow> rows;
  /// Cache outcome of this run (both 0 when CampaignSpec::cache_dir was
  /// empty): hits + misses == trials x experiments, and misses is exactly
  /// the number of (trial, spec) cells that ran on the engine.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// Groups per-trial rows by spec index and summarizes every derived metric
/// across trials (mean/stderr/min/max via util::Accumulator). Rows must be
/// grouped as run_campaign emits them (all specs of trial 0, then trial 1,
/// ...); the output has one CampaignRow per distinct spec index.
[[nodiscard]] std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows);

/// Runs the whole campaign on one BatchExecutor submission (see file
/// comment), consulting the result cache first when cache_dir is set.
/// Throws std::invalid_argument — naming the registered topologies /
/// scenarios — on unknown names, and on empty trial or experiment lists,
/// explicit attacker/destination AS lists, empty analysis sets, or
/// out-of-range rollout steps.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& campaign,
                                          const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_H
