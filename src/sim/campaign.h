// Multi-topology experiment campaigns.
//
// The paper's headline numbers (Table 3, Figures 3-16) are statistics over
// one sampled AS graph; a production-scale reproduction sweeps many
// generated topologies and reports per-trial spread. A CampaignSpec is
// pure data: a topology::topology_registry() name, a trial count, a master
// seed, and the ExperimentSpec list to evaluate on every trial's topology.
//
// Scheduling: run_campaign submits trials in waves. Each wave flattens its
// trials' topology prep plus every (trial, spec, pair) work item — into a
// single BatchExecutor submission. Short specs no longer serialize behind
// long ones at per-spec run() barriers, and topology generation for later
// trials overlaps pair analysis of earlier ones: prep units occupy the
// lowest indices, so workers draining pair chunks of trial t while another
// worker is still generating trial t+1 is the steady state, not a special
// case. A fixed campaign (no target_stderr, no wave_size) is one wave —
// exactly the old single-submission schedule. With target_stderr set the
// wave barriers become sequential stopping points: after each wave every
// still-running spec folds the wave's per-trial metric values into its
// running util::Accumulators (Accumulator::merge, in wave order), and a
// spec whose every metric has std_error() <= target_stderr stops
// scheduling further trials — "as few trials as the precision target
// allows" instead of "as many as we budgeted".
//
// Determinism contract: trial t's topology is generated from
// topology::trial_seed(seed, topology, t) — reproducible in isolation —
// and all accumulation is per-worker integer partials merged in worker
// order, so per-trial rows are bit-for-bit identical to independent
// run_experiment_suite calls on the same generated topologies, for any
// worker count.
//
// Fault tolerance: by default a throwing unit fails only its own (trial,
// spec) cell (BatchExecutor::run_isolated); every other cell completes,
// is checkpointed into the cache the moment it finishes, and the failures
// come back as structured CampaignResult::failed_cells. Since failures
// are never cached and surviving rows never depend on them, a crashed,
// killed, or fault-injected run followed by a re-run with the same
// cache_dir converges to rows byte-identical to an undisturbed run.
// Sharded execution (shard i of N by cache-key fingerprint) and
// merge-only assembly build distributed campaigns on the same cache.
#ifndef SBGP_SIM_CAMPAIGN_H
#define SBGP_SIM_CAMPAIGN_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.h"
#include "sim/fault_injection.h"
#include "util/stats.h"

namespace sbgp::sim {

/// A whole multi-topology study as data: every trial generates a fresh
/// topology from the named registry entry and evaluates every experiment
/// spec on it. Experiment specs must sample their pair sets (explicit
/// attacker/destination AS lists are topology-specific and rejected).
struct CampaignSpec {
  std::string label;                     // defaults to the topology name
  std::string topology = "default-10k";  // topology::topology_registry() name
  std::size_t trials = 3;
  std::uint64_t seed = 20130812;  // master seed -> per-trial topology seeds
  std::vector<ExperimentSpec> experiments;
  /// When non-empty, a CampaignCache directory (sim/campaign_cache.h):
  /// run_campaign consults it per (trial, spec) cell before enqueuing the
  /// cell's pair grid — hits skip engine work entirely (a trial whose
  /// every cell hits is not even generated) — and persists every computed
  /// cell the moment it completes (fsync + atomic rename, so a killed
  /// process loses only in-flight cells and an identical re-run resumes
  /// from the hits). Rows served from cache are byte-identical to
  /// recomputed ones (the store round-trips raw integer counters).
  std::string cache_dir;
  /// Fail fast (the pre-isolation behavior): the first throwing unit
  /// aborts the whole batch and run_campaign rethrows it. Default is
  /// failure isolation — a throwing unit fails only its own (trial, spec)
  /// cell, every other cell completes and persists, and the failures come
  /// back in CampaignResult::failed_cells.
  bool strict = false;
  /// Sharded execution: with shard_count >= 2, this process computes only
  /// the (trial, spec) cells whose cache-key fingerprint maps to
  /// shard_index (cache_key_fingerprint(key) mod shard_count — stable
  /// across processes and platforms), and emits rows for those cells
  /// only. Requires cache_dir: N shards share one directory, and a
  /// merge_only run assembles the full row set from it. shard_count 0 or
  /// 1 = unsharded.
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  /// Assemble the final rows purely from cache hits: no topology is
  /// generated and no engine runs. Cells absent from the cache are
  /// reported in CampaignResult::failed_cells ("not in cache") instead of
  /// computed. Requires cache_dir; ignores sharding (a merge covers every
  /// cell).
  bool merge_only = false;
  /// Deterministic fault injection (sim/fault_injection.h) for tests and
  /// CI resilience jobs. When disabled (the default), the SBGP_FAULTS
  /// environment variable is consulted instead. Faults never change
  /// surviving results — failed cells are never cached and never emitted —
  /// and the spec takes no part in any fingerprint.
  FaultSpec fault_spec;
  /// Sequential stopping target (0 = disabled, the fixed-trial-count
  /// behavior). When > 0 the campaign runs adaptively: after every wave a
  /// spec whose 9 campaign_metrics all have accumulator std_error() <=
  /// target_stderr (with at least 2 trials) stops scheduling further
  /// trials and its aggregated row reports StoppingReason::kConverged.
  /// Specs still unconverged when the trial budget runs out report
  /// kBudget. Adaptive runs cannot be sharded or merge_only (stopping is
  /// a global decision), and the adaptive configuration is mixed into the
  /// per-cell cache fingerprints so cached cells are never served across
  /// different adaptive configs — fixed runs keep their existing keys.
  double target_stderr = 0.0;
  /// Trials per wave (0 = default: the whole budget in one wave when
  /// stopping is off — the classic schedule — or 4 when adaptive).
  /// Setting wave_size on a fixed campaign only partitions the schedule;
  /// the emitted rows are identical for any wave size.
  std::size_t wave_size = 0;
  /// Adaptive trial budget (0 = use `trials`). Only meaningful with
  /// target_stderr > 0; a spec that never converges stops here with
  /// StoppingReason::kBudget.
  std::size_t max_trials = 0;
};

/// Why a spec's trial scheduling ended. Serialized as the aggregated
/// `stopping_reason` column ("fixed" / "converged" / "budget").
enum class StoppingReason {
  kFixed,      // stopping disabled: ran the requested trial count
  kConverged,  // every metric's std_error() reached target_stderr
  kBudget,     // adaptive, but the trial budget ran out first
};

[[nodiscard]] std::string_view to_string(StoppingReason reason);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] StoppingReason parse_stopping_reason(std::string_view name);

/// Order-sensitive fingerprint of every result-affecting campaign field:
/// label, topology, trials, seed, the experiment list (count plus each
/// spec's fingerprint), and the adaptive config (target_stderr, wave_size,
/// max_trials). Execution-only knobs — cache_dir, strict, sharding,
/// merge_only, fault injection — take no part, by the same rule as
/// ExperimentSpec's fingerprint: equal fingerprints must imply equal rows.
[[nodiscard]] std::uint64_t spec_fingerprint(const CampaignSpec& campaign);

/// One (trial, experiment spec) result: the same row run_experiment_suite
/// would produce on that trial's topology, plus the campaign coordinates
/// that make the row self-describing in serialized form.
struct CampaignTrialRow {
  std::string topology;
  std::size_t trial = 0;
  std::uint64_t topology_seed = 0;  // topology::trial_seed(...) of this trial
  std::size_t spec_index = 0;       // index into CampaignSpec::experiments
  ExperimentRow row;

  [[nodiscard]] bool operator==(const CampaignTrialRow&) const = default;
};

/// Cross-trial summary of one derived metric.
struct MetricSummary {
  double mean = 0.0;
  double std_error = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] bool operator==(const MetricSummary&) const = default;
};

/// The derived per-row metrics a campaign aggregates across trials, in
/// campaign_metric_names() order. Metrics of unselected analyses are zero.
inline constexpr std::size_t kNumCampaignMetrics = 9;

/// Column names: happy_lower, happy_upper, doomed, protectable, immune,
/// downgraded, collateral_benefits, collateral_damages, metric_change.
[[nodiscard]] const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names();

/// Derived metric values of one row's statistics (fractions of the
/// relevant source populations; 0 when the analysis was not selected).
[[nodiscard]] std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats);

/// Traffic-weighted counterparts: the same 9 ratios computed over the w_*
/// mirrors of PairStats. Under a uniform traffic model every ratio is the
/// identical double to its unweighted counterpart (the scale cancels
/// exactly — both operands stay below 2^53).
[[nodiscard]] std::array<double, kNumCampaignMetrics>
campaign_weighted_metrics(const PairStats& stats);

/// Index of a named metric in campaign_metric_names() order; throws
/// std::invalid_argument (listing the names) for unknown names.
[[nodiscard]] std::size_t campaign_metric_index(std::string_view name);

/// One experiment spec aggregated across every trial of a campaign.
struct CampaignRow {
  std::string label;  // trial 0's row label (step labels can vary per trial)
  std::string topology;
  std::size_t spec_index = 0;
  std::size_t trials = 0;  // trials that produced a row (failed ones don't)
  /// Cells of this spec that failed (or, merge-only, were missing) and
  /// therefore contribute nothing to the summaries. trials +
  /// failed_trials == the trials this spec actually scheduled (the full
  /// campaign trial count unless adaptive stopping ended it early).
  std::size_t failed_trials = 0;
  /// Why scheduling ended for this spec: kFixed unless the campaign ran
  /// adaptively (CampaignSpec::target_stderr > 0). With kConverged,
  /// `trials` is the realized count — how few trials the precision target
  /// needed, not how many were budgeted.
  StoppingReason stopping = StoppingReason::kFixed;
  std::array<MetricSummary, kNumCampaignMetrics> metrics;
  /// Traffic-weighted summaries (campaign_weighted_metrics across trials).
  /// Equal to `metrics` — value for value — whenever every experiment ran
  /// a uniform traffic model, including everything read back from files
  /// written before the weighted columns existed.
  std::array<MetricSummary, kNumCampaignMetrics> weighted_metrics;

  [[nodiscard]] bool operator==(const CampaignRow&) const = default;
};

/// One (trial, spec) cell that did not produce a row: a unit of the cell
/// threw (the first failure's message is kept), its trial's preparation
/// failed, or — in merge-only mode — the cell was absent from the cache.
struct FailedCell {
  std::size_t trial = 0;
  std::size_t spec_index = 0;
  std::string error;

  [[nodiscard]] bool operator==(const FailedCell&) const = default;
};

/// Everything a campaign produced: per-trial rows in (trial-major, spec
/// order) and one aggregated row per experiment spec.
struct CampaignResult {
  std::string label;
  std::string topology;
  std::uint64_t seed = 0;
  std::vector<CampaignTrialRow> trial_rows;
  std::vector<CampaignRow> rows;
  /// Cache outcome of this run (both 0 when CampaignSpec::cache_dir was
  /// empty): hits + misses == the cells this run was responsible for (all
  /// trials x experiments unsharded; this shard's cells otherwise), and
  /// misses is the number of cells that ran on the engine (or, merge-only,
  /// were found missing).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Cells that produced no row, in (trial, spec) order. Empty on a clean
  /// run, and always empty in strict mode (the failure was rethrown
  /// instead). Failures are never cached, so re-running the campaign with
  /// the same cache_dir retries exactly these cells.
  std::vector<FailedCell> failed_cells;
  /// Completed cells whose cache install failed (disk full, injected
  /// store fault). Their rows are still returned; only the checkpoint was
  /// lost, so an identical re-run recomputes just those cells.
  std::size_t cache_store_failures = 0;
};

/// Groups per-trial rows by spec index and summarizes every derived metric
/// across trials (mean/stderr/min/max via util::Accumulator). Rows must be
/// grouped as run_campaign emits them (all specs of trial 0, then trial 1,
/// ...); the output has one CampaignRow per distinct spec index.
[[nodiscard]] std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows);

/// Streaming result sink: called once per completed per-trial row, in
/// exactly the order CampaignResult::trial_rows will hold them (trial-
/// major, spec order — completed cells are buffered briefly so emission
/// order never depends on worker timing). Calls are serialized (never
/// concurrent) but come from worker threads while the campaign is still
/// running, so a sink wired to a campaign_io appender streams rows to
/// disk as each cell's last unit finishes instead of at end-of-run; for a
/// fixed run the streamed file is byte-identical to the end-of-run
/// writer's. Failed cells emit nothing. The sink must not call back into
/// the campaign.
using RowSink = std::function<void(const CampaignTrialRow&)>;

/// Runs the whole campaign in wave-sized BatchExecutor submissions (see
/// file comment; a fixed campaign is one wave), consulting the result
/// cache first when cache_dir is set and streaming completed rows through
/// `sink` when one is given. Unit failures are isolated per (trial, spec)
/// cell unless campaign.strict is set (then the first failure is
/// rethrown, as every failure during spec validation always is). Throws
/// std::invalid_argument — naming the registered topologies / scenarios —
/// on unknown names, and on empty trial or experiment lists, explicit
/// attacker/destination AS lists, empty analysis sets, bad shard,
/// merge-only or adaptive configurations, or (from trial preparation,
/// strict mode) out-of-range rollout steps.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& campaign,
                                          const RunnerOptions& opts = {},
                                          const RowSink& sink = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_H
