// Multi-topology experiment campaigns.
//
// The paper's headline numbers (Table 3, Figures 3-16) are statistics over
// one sampled AS graph; a production-scale reproduction sweeps many
// generated topologies and reports per-trial spread. A CampaignSpec is
// pure data: a topology::topology_registry() name, a trial count, a master
// seed, and the ExperimentSpec list to evaluate on every trial's topology.
//
// Scheduling: run_campaign flattens the whole campaign — every trial's
// topology prep plus every (trial, spec, pair) work item — into a single
// BatchExecutor submission. Short specs no longer serialize behind long
// ones at per-spec run() barriers, and topology generation for later
// trials overlaps pair analysis of earlier ones: prep units occupy the
// lowest indices, so workers draining pair chunks of trial t while another
// worker is still generating trial t+1 is the steady state, not a special
// case.
//
// Determinism contract: trial t's topology is generated from
// topology::trial_seed(seed, topology, t) — reproducible in isolation —
// and all accumulation is per-worker integer partials merged in worker
// order, so per-trial rows are bit-for-bit identical to independent
// run_experiment_suite calls on the same generated topologies, for any
// worker count.
//
// Fault tolerance: by default a throwing unit fails only its own (trial,
// spec) cell (BatchExecutor::run_isolated); every other cell completes,
// is checkpointed into the cache the moment it finishes, and the failures
// come back as structured CampaignResult::failed_cells. Since failures
// are never cached and surviving rows never depend on them, a crashed,
// killed, or fault-injected run followed by a re-run with the same
// cache_dir converges to rows byte-identical to an undisturbed run.
// Sharded execution (shard i of N by cache-key fingerprint) and
// merge-only assembly build distributed campaigns on the same cache.
#ifndef SBGP_SIM_CAMPAIGN_H
#define SBGP_SIM_CAMPAIGN_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.h"
#include "sim/fault_injection.h"
#include "util/stats.h"

namespace sbgp::sim {

/// A whole multi-topology study as data: every trial generates a fresh
/// topology from the named registry entry and evaluates every experiment
/// spec on it. Experiment specs must sample their pair sets (explicit
/// attacker/destination AS lists are topology-specific and rejected).
struct CampaignSpec {
  std::string label;                     // defaults to the topology name
  std::string topology = "default-10k";  // topology::topology_registry() name
  std::size_t trials = 3;
  std::uint64_t seed = 20130812;  // master seed -> per-trial topology seeds
  std::vector<ExperimentSpec> experiments;
  /// When non-empty, a CampaignCache directory (sim/campaign_cache.h):
  /// run_campaign consults it per (trial, spec) cell before enqueuing the
  /// cell's pair grid — hits skip engine work entirely (a trial whose
  /// every cell hits is not even generated) — and persists every computed
  /// cell the moment it completes (fsync + atomic rename, so a killed
  /// process loses only in-flight cells and an identical re-run resumes
  /// from the hits). Rows served from cache are byte-identical to
  /// recomputed ones (the store round-trips raw integer counters).
  std::string cache_dir;
  /// Fail fast (the pre-isolation behavior): the first throwing unit
  /// aborts the whole batch and run_campaign rethrows it. Default is
  /// failure isolation — a throwing unit fails only its own (trial, spec)
  /// cell, every other cell completes and persists, and the failures come
  /// back in CampaignResult::failed_cells.
  bool strict = false;
  /// Sharded execution: with shard_count >= 2, this process computes only
  /// the (trial, spec) cells whose cache-key fingerprint maps to
  /// shard_index (cache_key_fingerprint(key) mod shard_count — stable
  /// across processes and platforms), and emits rows for those cells
  /// only. Requires cache_dir: N shards share one directory, and a
  /// merge_only run assembles the full row set from it. shard_count 0 or
  /// 1 = unsharded.
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  /// Assemble the final rows purely from cache hits: no topology is
  /// generated and no engine runs. Cells absent from the cache are
  /// reported in CampaignResult::failed_cells ("not in cache") instead of
  /// computed. Requires cache_dir; ignores sharding (a merge covers every
  /// cell).
  bool merge_only = false;
  /// Deterministic fault injection (sim/fault_injection.h) for tests and
  /// CI resilience jobs. When disabled (the default), the SBGP_FAULTS
  /// environment variable is consulted instead. Faults never change
  /// surviving results — failed cells are never cached and never emitted —
  /// and the spec takes no part in any fingerprint.
  FaultSpec fault_spec;
};

/// One (trial, experiment spec) result: the same row run_experiment_suite
/// would produce on that trial's topology, plus the campaign coordinates
/// that make the row self-describing in serialized form.
struct CampaignTrialRow {
  std::string topology;
  std::size_t trial = 0;
  std::uint64_t topology_seed = 0;  // topology::trial_seed(...) of this trial
  std::size_t spec_index = 0;       // index into CampaignSpec::experiments
  ExperimentRow row;

  [[nodiscard]] bool operator==(const CampaignTrialRow&) const = default;
};

/// Cross-trial summary of one derived metric.
struct MetricSummary {
  double mean = 0.0;
  double std_error = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] bool operator==(const MetricSummary&) const = default;
};

/// The derived per-row metrics a campaign aggregates across trials, in
/// campaign_metric_names() order. Metrics of unselected analyses are zero.
inline constexpr std::size_t kNumCampaignMetrics = 9;

/// Column names: happy_lower, happy_upper, doomed, protectable, immune,
/// downgraded, collateral_benefits, collateral_damages, metric_change.
[[nodiscard]] const std::array<std::string_view, kNumCampaignMetrics>&
campaign_metric_names();

/// Derived metric values of one row's statistics (fractions of the
/// relevant source populations; 0 when the analysis was not selected).
[[nodiscard]] std::array<double, kNumCampaignMetrics> campaign_metrics(
    const PairStats& stats);

/// Index of a named metric in campaign_metric_names() order; throws
/// std::invalid_argument (listing the names) for unknown names.
[[nodiscard]] std::size_t campaign_metric_index(std::string_view name);

/// One experiment spec aggregated across every trial of a campaign.
struct CampaignRow {
  std::string label;  // trial 0's row label (step labels can vary per trial)
  std::string topology;
  std::size_t spec_index = 0;
  std::size_t trials = 0;  // trials that produced a row (failed ones don't)
  /// Cells of this spec that failed (or, merge-only, were missing) and
  /// therefore contribute nothing to the summaries. trials +
  /// failed_trials == the campaign's trial count for this spec's scope.
  std::size_t failed_trials = 0;
  std::array<MetricSummary, kNumCampaignMetrics> metrics;

  [[nodiscard]] bool operator==(const CampaignRow&) const = default;
};

/// One (trial, spec) cell that did not produce a row: a unit of the cell
/// threw (the first failure's message is kept), its trial's preparation
/// failed, or — in merge-only mode — the cell was absent from the cache.
struct FailedCell {
  std::size_t trial = 0;
  std::size_t spec_index = 0;
  std::string error;

  [[nodiscard]] bool operator==(const FailedCell&) const = default;
};

/// Everything a campaign produced: per-trial rows in (trial-major, spec
/// order) and one aggregated row per experiment spec.
struct CampaignResult {
  std::string label;
  std::string topology;
  std::uint64_t seed = 0;
  std::vector<CampaignTrialRow> trial_rows;
  std::vector<CampaignRow> rows;
  /// Cache outcome of this run (both 0 when CampaignSpec::cache_dir was
  /// empty): hits + misses == the cells this run was responsible for (all
  /// trials x experiments unsharded; this shard's cells otherwise), and
  /// misses is the number of cells that ran on the engine (or, merge-only,
  /// were found missing).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Cells that produced no row, in (trial, spec) order. Empty on a clean
  /// run, and always empty in strict mode (the failure was rethrown
  /// instead). Failures are never cached, so re-running the campaign with
  /// the same cache_dir retries exactly these cells.
  std::vector<FailedCell> failed_cells;
  /// Completed cells whose cache install failed (disk full, injected
  /// store fault). Their rows are still returned; only the checkpoint was
  /// lost, so an identical re-run recomputes just those cells.
  std::size_t cache_store_failures = 0;
};

/// Groups per-trial rows by spec index and summarizes every derived metric
/// across trials (mean/stderr/min/max via util::Accumulator). Rows must be
/// grouped as run_campaign emits them (all specs of trial 0, then trial 1,
/// ...); the output has one CampaignRow per distinct spec index.
[[nodiscard]] std::vector<CampaignRow> aggregate_trial_rows(
    const std::vector<CampaignTrialRow>& trial_rows);

/// Runs the whole campaign on one BatchExecutor submission (see file
/// comment), consulting the result cache first when cache_dir is set.
/// Unit failures are isolated per (trial, spec) cell unless
/// campaign.strict is set (then the first failure is rethrown, as every
/// failure during spec validation always is). Throws
/// std::invalid_argument — naming the registered topologies / scenarios —
/// on unknown names, and on empty trial or experiment lists, explicit
/// attacker/destination AS lists, empty analysis sets, bad shard or
/// merge-only configurations, or (from trial preparation, strict mode)
/// out-of-range rollout steps.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& campaign,
                                          const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_CAMPAIGN_H
