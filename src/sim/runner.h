// Experiment runners: estimate the paper's aggregate quantities by
// averaging per-(attacker, destination) analyses over sampled pairs.
//
// The paper evaluates over all |V|^2 pairs on a supercomputer; we sample
// deterministically (seeded) from the chosen attacker set M and destination
// set D — the metric is a mean over pairs, so a few thousand samples
// estimate it tightly. Every runner is a thin wrapper over the fused
// destination-grouped sweep (sim/pair_analysis.h's analyze_sweep) with a
// single analysis selected: it executes on a sim::BatchExecutor (persistent
// workers, reusable per-worker routing workspaces with per-destination
// baseline caching) and merges per-worker integer partial sums, so results
// are bit-for-bit independent of the thread count. Studies that need
// several statistics per pair should call analyze_sweep or
// run_experiment_suite directly instead of several runners — the fused
// pass computes each routing outcome once however many analyses are on.
#ifndef SBGP_SIM_RUNNER_H
#define SBGP_SIM_RUNNER_H

#include <cstdint>
#include <vector>

#include "routing/engine.h"
#include "routing/model.h"
#include "security/collateral.h"
#include "security/downgrade.h"
#include "security/happiness.h"
#include "security/partition.h"
#include "security/rootcause.h"
#include "sim/pair_analysis.h"
#include "topology/as_graph.h"

namespace sbgp::sim {

using security::MetricBounds;
using security::PartitionShares;

/// Deterministically samples up to `max_count` ASes from `pool` (the whole
/// pool, shuffled, if it is smaller).
[[nodiscard]] std::vector<AsId> sample_ases(const std::vector<AsId>& pool,
                                            std::size_t max_count,
                                            std::uint64_t seed);

/// All ASes [0, n).
[[nodiscard]] std::vector<AsId> all_ases(const AsGraph& g);

/// Non-stub ASes — the attacker set M' of Section 5.2 (stubs are assumed
/// to be stopped by prefix filtering).
[[nodiscard]] std::vector<AsId> non_stub_ases(const AsGraph& g);

/// H_{M,D}(S): average fraction of happy sources over attackers x
/// destinations, with tie-break lower/upper bounds (Section 4.1).
[[nodiscard]] MetricBounds estimate_metric(const AsGraph& g,
                                           const std::vector<AsId>& attackers,
                                           const std::vector<AsId>& destinations,
                                           SecurityModel model,
                                           const Deployment& dep,
                                           const RunnerOptions& opts = {});

/// H_{M,d}(S) for each destination d (averaged over the attackers only).
[[nodiscard]] std::vector<MetricBounds> metric_per_destination(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts = {});

/// Average doomed/protectable/immune shares over pairs (Figure 3 bars).
[[nodiscard]] PartitionShares average_partitions(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    LocalPrefPolicy lp = LocalPrefPolicy::standard(),
    const RunnerOptions& opts = {});

/// Aggregate downgrade statistics over pairs (Figures 13, 16).
[[nodiscard]] security::DowngradeStats total_downgrades(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts = {});

/// Aggregate collateral statistics over pairs (Table 3).
[[nodiscard]] security::CollateralStats total_collateral(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts = {});

/// Aggregate root-cause decomposition over pairs (Figure 16).
[[nodiscard]] security::RootCauseStats total_root_causes(
    const AsGraph& g, const std::vector<AsId>& attackers,
    const std::vector<AsId>& destinations, SecurityModel model,
    const Deployment& dep, const RunnerOptions& opts = {});

}  // namespace sbgp::sim

#endif  // SBGP_SIM_RUNNER_H
